// The serving transports: listen-address parsing, unix-socket and TCP
// sessions over a shared Server, cross-client cache sharing, transport-
// independent response bytes, kill-and-restart warm starts through
// --cache-dir, idle-timeout disconnects, and quit-driven drain of
// concurrent connections.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/json.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"

namespace t1map {
namespace {

namespace fs = std::filesystem;

serve::ServeConfig fast_config() {
  serve::ServeConfig config;
  config.defaults.verify_rounds = 0;
  config.defaults.cec = false;  // SAT time is not what these tests test
  return config;
}

/// Minimal blocking JSONL client over a connected socket.
class LineClient {
 public:
  static LineClient connect_unix(const std::string& path) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&sa),
                        sizeof sa),
              0)
        << path;
    return LineClient(fd);
  }

  static LineClient connect_tcp(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&sa),
                        sizeof sa),
              0)
        << "port " << port;
    return LineClient(fd);
  }

  explicit LineClient(int fd) : fd_(fd) {}
  LineClient(LineClient&& other) noexcept : fd_(other.fd_), buf_(other.buf_) {
    other.fd_ = -1;
  }
  ~LineClient() { close(); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void send(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n =
          ::send(fd_, framed.data() + sent, framed.size() - sent, 0);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Blocking line read; empty string means the server closed on us.
  std::string recv_line() {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return std::string();
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buf_;
};

/// A Server on its own accept thread over the given transport.
class ServerFixture {
 public:
  explicit ServerFixture(serve::Transport& transport,
                         serve::ServeConfig config = fast_config())
      : server_(config), thread_([this, &transport] {
          responses_ = server_.serve(transport);
        }) {}
  ~ServerFixture() { join(); }

  void join() {
    if (thread_.joinable()) thread_.join();
  }
  serve::Server& server() { return server_; }
  std::uint64_t responses() const { return responses_; }

 private:
  serve::Server server_;
  std::uint64_t responses_ = 0;
  std::thread thread_;
};

fs::path fresh_path(const std::string& name) {
  const fs::path p = fs::temp_directory_path() / ("t1map_" + name);
  fs::remove_all(p);
  return p;
}

// --- Address parsing ---------------------------------------------------------

TEST(ListenAddress, ParsesAllForms) {
  const serve::ListenAddress unix_addr =
      serve::parse_listen_address("unix:/tmp/x.sock");
  EXPECT_EQ(unix_addr.kind, serve::ListenAddress::Kind::kUnix);
  EXPECT_EQ(unix_addr.path, "/tmp/x.sock");

  const serve::ListenAddress tcp =
      serve::parse_listen_address("tcp:127.0.0.1:4171");
  EXPECT_EQ(tcp.kind, serve::ListenAddress::Kind::kTcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 4171);

  const serve::ListenAddress bare =
      serve::parse_listen_address("localhost:0");
  EXPECT_EQ(bare.kind, serve::ListenAddress::Kind::kTcp);
  EXPECT_EQ(bare.host, "localhost");
  EXPECT_EQ(bare.port, 0);

  const serve::ListenAddress defaulted = serve::parse_listen_address(":9");
  EXPECT_EQ(defaulted.host, "127.0.0.1");
  EXPECT_EQ(defaulted.port, 9);
}

TEST(ListenAddress, RejectsMalformedSpecs) {
  for (const char* bad : {"", "unix:", "tcp:", "tcp:nohost", "noport",
                          "host:", "host:notanumber", "host:99999",
                          "host:-1"}) {
    EXPECT_THROW(serve::parse_listen_address(bad), ContractError) << bad;
  }
}

// --- Socket serving ----------------------------------------------------------

TEST(SocketServe, UnixSocketServesJobsAndShutsDownOnQuit) {
  const fs::path sock = fresh_path("unix_basic.sock");
  serve::SocketListener listener(
      serve::parse_listen_address("unix:" + sock.string()));
  ServerFixture fixture(listener);

  LineClient client = LineClient::connect_unix(sock.string());
  client.send("{\"id\":1,\"gen\":\"adder8\"}");
  const io::Json r1 = io::Json::parse(client.recv_line());
  EXPECT_TRUE(r1.at("ok").as_bool());
  EXPECT_FALSE(r1.at("cached").as_bool());
  EXPECT_EQ(r1.at("design").as_string(), "adder8");

  client.send("{\"id\":2,\"gen\":\"adder8\"}");
  const io::Json r2 = io::Json::parse(client.recv_line());
  EXPECT_TRUE(r2.at("cached").as_bool());
  EXPECT_EQ(r2.at("ms").as_number(), 0.0);

  client.send("{\"id\":3,\"cmd\":\"quit\"}");
  const io::Json r3 = io::Json::parse(client.recv_line());
  EXPECT_TRUE(r3.at("quit").as_bool());

  fixture.join();
  EXPECT_EQ(fixture.responses(), 3u);
  EXPECT_EQ(fixture.server().counters().connections, 1u);
  // The socket path is removed on listener teardown.
}

TEST(SocketServe, TcpEphemeralPortServes) {
  serve::SocketListener listener(
      serve::parse_listen_address("tcp:127.0.0.1:0"));
  ASSERT_NE(listener.bound_port(), 0);  // getsockname resolved the port
  EXPECT_NE(listener.describe().find(std::to_string(listener.bound_port())),
            std::string::npos);
  ServerFixture fixture(listener);

  LineClient client = LineClient::connect_tcp(listener.bound_port());
  client.send("{\"id\":\"tcp\",\"gen\":\"adder8\"}");
  const io::Json r = io::Json::parse(client.recv_line());
  EXPECT_TRUE(r.at("ok").as_bool());
  EXPECT_EQ(r.at("id").as_string(), "tcp");
  client.send("{\"cmd\":\"quit\"}");
  EXPECT_FALSE(client.recv_line().empty());
  fixture.join();
}

TEST(SocketServe, ConcurrentClientsShareTheCache) {
  const fs::path sock = fresh_path("unix_shared.sock");
  serve::SocketListener listener(
      serve::parse_listen_address("unix:" + sock.string()));
  ServerFixture fixture(listener);

  LineClient a = LineClient::connect_unix(sock.string());
  LineClient b = LineClient::connect_unix(sock.string());

  a.send("{\"id\":1,\"gen\":\"adder16\"}");
  const io::Json ra = io::Json::parse(a.recv_line());
  ASSERT_TRUE(ra.at("ok").as_bool());
  EXPECT_FALSE(ra.at("cached").as_bool());

  // Client B asks for the same circuit: a cross-connection cache hit with
  // the identical statistics block.
  b.send("{\"id\":2,\"gen\":\"adder16\"}");
  const io::Json rb = io::Json::parse(b.recv_line());
  ASSERT_TRUE(rb.at("ok").as_bool());
  EXPECT_TRUE(rb.at("cached").as_bool());
  EXPECT_EQ(ra.at("stats").dump(-1), rb.at("stats").dump(-1));

  // Stats sees both connections and a two-tier-less (memory-only) cache.
  b.send("{\"id\":3,\"cmd\":\"stats\"}");
  const io::Json stats = io::Json::parse(b.recv_line());
  EXPECT_EQ(stats.at("serve").at("connections").as_number(), 2);
  const io::Json& cache = stats.at("serve").at("cache");
  EXPECT_EQ(cache.at("tiers").size(), 1u);
  EXPECT_EQ(cache.at("tiers").at(0).at("name").as_string(), "memory");
  EXPECT_GE(cache.at("tiers").at(0).at("shards").size(), 1u);
  EXPECT_GE(stats.at("serve").at("latency").at("t1").at("count").as_number(),
            2);

  b.send("{\"cmd\":\"quit\"}");
  EXPECT_FALSE(b.recv_line().empty());
  // Quit drains client A's session too: its next read reports EOF.
  EXPECT_EQ(a.recv_line(), "");
  fixture.join();
}

TEST(SocketServe, ResponsesMatchStreamTransportByteForByte) {
  // The same script through the stream loop and through a unix socket:
  // identical bytes (the transport must not leak into responses).
  const std::vector<std::string> script = {
      "{\"id\":1,\"gen\":\"adder8\"}",
      "{\"id\":2,\"gen\":\"mul8\",\"config\":\"nphi\"}",
      "{\"id\":3,\"gen\":\"adder8\"}",
      "{\"id\":4,\"bad\":1}",
  };

  std::vector<std::string> stream_lines;
  {
    std::string joined;
    for (const std::string& line : script) joined += line + "\n";
    serve::Server server(fast_config());
    std::istringstream in(joined);
    std::ostringstream out;
    server.serve(in, out);
    std::istringstream split(out.str());
    for (std::string line; std::getline(split, line);) {
      stream_lines.push_back(line);
    }
  }

  const fs::path sock = fresh_path("unix_bytes.sock");
  serve::SocketListener listener(
      serve::parse_listen_address("unix:" + sock.string()));
  ServerFixture fixture(listener);
  LineClient client = LineClient::connect_unix(sock.string());
  std::vector<std::string> socket_lines;
  for (const std::string& line : script) {
    client.send(line);
    socket_lines.push_back(client.recv_line());
  }
  client.send("{\"cmd\":\"quit\"}");
  client.recv_line();
  fixture.join();

  ASSERT_EQ(stream_lines.size(), script.size());
  ASSERT_EQ(socket_lines.size(), script.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    // "ms" is timing; everything else must agree byte for byte, so split
    // around it rather than reparse.
    const auto strip = [](const std::string& line) {
      const std::size_t ms = line.find("\"ms\":");
      return ms == std::string::npos ? line : line.substr(0, ms);
    };
    EXPECT_EQ(strip(stream_lines[i]), strip(socket_lines[i])) << i;
  }
}

TEST(SocketServe, RestartWithCacheDirServesWarmBitIdenticalHits) {
  // The acceptance scenario: populate through server 1, kill it, start
  // server 2 on the same --cache-dir, and get bit-identical warm hits.
  const fs::path sock = fresh_path("unix_warm.sock");
  const fs::path dir = fresh_path("warm_cache_dir");
  serve::ServeConfig config = fast_config();
  config.cache_dir = dir.string();

  const std::string job = "{\"id\":\"w\",\"gen\":\"adder16\"}";
  std::string cold_line;
  {
    serve::SocketListener listener(
        serve::parse_listen_address("unix:" + sock.string()));
    ServerFixture fixture(listener, config);
    LineClient client = LineClient::connect_unix(sock.string());
    client.send(job);
    cold_line = client.recv_line();
    client.send("{\"cmd\":\"quit\"}");
    client.recv_line();
  }
  const io::Json cold = io::Json::parse(cold_line);
  ASSERT_TRUE(cold.at("ok").as_bool());
  EXPECT_FALSE(cold.at("cached").as_bool());

  serve::SocketListener listener(
      serve::parse_listen_address("unix:" + sock.string()));
  ServerFixture fixture(listener, config);
  LineClient client = LineClient::connect_unix(sock.string());
  client.send(job);
  const std::string warm_line = client.recv_line();
  const io::Json warm = io::Json::parse(warm_line);
  ASSERT_TRUE(warm.at("ok").as_bool());
  EXPECT_TRUE(warm.at("cached").as_bool());
  EXPECT_EQ(warm.at("ms").as_number(), 0.0);  // warm hits cost no flow time
  // Bit-identical modulo the cached/ms fields: compare the stats and
  // input blocks byte for byte.
  EXPECT_EQ(cold.at("stats").dump(-1), warm.at("stats").dump(-1));
  EXPECT_EQ(cold.at("input").dump(-1), warm.at("input").dump(-1));
  EXPECT_EQ(cold.at("cec").as_string(), warm.at("cec").as_string());

  // Stats reports the disk tier, its recovered entries included.
  client.send("{\"cmd\":\"stats\"}");
  const io::Json stats = io::Json::parse(client.recv_line());
  const io::Json& tiers = stats.at("serve").at("cache").at("tiers");
  ASSERT_EQ(tiers.size(), 2u);
  EXPECT_EQ(tiers.at(1).at("name").as_string(), "disk");
  EXPECT_EQ(tiers.at(1).at("recovered_entries").as_number(), 1);
  // The warm hit was served from disk and promoted into memory.
  EXPECT_EQ(tiers.at(1).at("hits").as_number(), 1);
  EXPECT_EQ(tiers.at(0).at("entries").as_number(), 1);

  client.send("{\"cmd\":\"quit\"}");
  client.recv_line();
  fixture.join();
  fs::remove_all(dir);
}

TEST(SocketServe, IdleClientsAreDisconnected) {
  const fs::path sock = fresh_path("unix_idle.sock");
  serve::SocketListener listener(
      serve::parse_listen_address("unix:" + sock.string()),
      /*idle_timeout_ms=*/100);
  ServerFixture fixture(listener);

  LineClient client = LineClient::connect_unix(sock.string());
  // Say nothing: the session times out and closes the connection.
  EXPECT_EQ(client.recv_line(), "");

  // The server is still accepting; a live client works and can quit.
  LineClient live = LineClient::connect_unix(sock.string());
  live.send("{\"cmd\":\"quit\"}");
  EXPECT_FALSE(live.recv_line().empty());
  fixture.join();
}

TEST(SocketServe, ShutdownDrainsWithoutAClientQuit) {
  // SIGTERM path: Transport::shutdown() from outside stops accept and
  // drains the idle session.
  const fs::path sock = fresh_path("unix_drain.sock");
  serve::SocketListener listener(
      serve::parse_listen_address("unix:" + sock.string()));
  ServerFixture fixture(listener);

  LineClient client = LineClient::connect_unix(sock.string());
  client.send("{\"id\":1,\"gen\":\"adder8\"}");
  ASSERT_FALSE(client.recv_line().empty());

  listener.shutdown();
  EXPECT_EQ(client.recv_line(), "");  // session drained, connection closed
  fixture.join();
  EXPECT_EQ(fixture.responses(), 1u);
}

}  // namespace
}  // namespace t1map
