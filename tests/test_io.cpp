// BLIF / DOT / JSON tests: structural sanity of the emitted text, full
// write -> parse -> CEC round trips for BLIF (AIGs and mapped netlists
// with T1 cells and latches), and JSON round trips.

#include <gtest/gtest.h>

#include <sstream>

#include "gen/arith.hpp"
#include "gen/voter.hpp"
#include "io/blif.hpp"
#include "io/dot.hpp"
#include "io/json.hpp"
#include "retime/dff_insert.hpp"
#include "sat/cec.hpp"
#include "serve/aig_hash.hpp"
#include "sfq/mapper.hpp"
#include "t1/flow.hpp"

namespace t1map {
namespace {

TEST(Blif, AigContainsAllSections) {
  const Aig aig = gen::ripple_adder(3);
  std::ostringstream os;
  io::write_blif(os, aig, "adder3");
  const std::string text = os.str();
  EXPECT_NE(text.find(".model adder3"), std::string::npos);
  EXPECT_NE(text.find(".inputs"), std::string::npos);
  EXPECT_NE(text.find(".outputs"), std::string::npos);
  EXPECT_NE(text.find(".names"), std::string::npos);
  EXPECT_NE(text.find(".end"), std::string::npos);
  // One PO alias line per output.
  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    EXPECT_NE(text.find(" " + aig.po_name(i) + "\n"), std::string::npos);
  }
}

TEST(Blif, NetlistWithT1AndDffs) {
  const Aig aig = gen::ripple_adder(4);
  t1::FlowParams params;
  params.num_phases = 4;
  const t1::FlowResult r = t1::run_flow(aig, params);

  std::ostringstream os;
  io::write_blif(os, r.materialized.netlist, "adder4_t1");
  const std::string text = os.str();
  // DFFs become latches; T1 taps are .names over three inputs.
  EXPECT_NE(text.find(".latch"), std::string::npos);
  EXPECT_NE(text.find(".names"), std::string::npos);
  EXPECT_EQ(text.find("T1"), std::string::npos);  // cores are flattened
}

TEST(Blif, AigRoundTripIsEquivalent) {
  const Aig aig = gen::ripple_adder(6);
  std::ostringstream os;
  io::write_blif(os, aig, "adder6");

  std::string model;
  const Aig back = io::read_blif_string(os.str(), &model);
  EXPECT_EQ(model, "adder6");
  EXPECT_EQ(back.num_pis(), aig.num_pis());
  EXPECT_EQ(back.num_pos(), aig.num_pos());

  const sat::CecResult cec = sat::check_equivalence(aig, back);
  EXPECT_EQ(cec.verdict, sat::CecResult::Verdict::kEquivalent);
}

TEST(Blif, MappedNetlistRoundTripIsEquivalent) {
  // The CLI's export path: a mapped netlist with T1 cells and latch-written
  // DFFs must parse back (latches as buffers) into something combinationally
  // equivalent to the source AIG.
  const Aig aig = gen::ripple_adder(5);
  t1::FlowParams params;
  params.num_phases = 4;
  params.use_t1 = true;
  const t1::FlowResult r = t1::run_flow(aig, params);
  ASSERT_GT(r.stats.t1_used, 0);

  std::ostringstream os;
  io::write_blif(os, r.materialized.netlist, "adder5_t1");
  const Aig back = io::read_blif_string(os.str());

  const sat::CecResult cec = sat::check_equivalence(aig, back);
  EXPECT_EQ(cec.verdict, sat::CecResult::Verdict::kEquivalent);
}

TEST(Blif, ReaderHandlesCoverFeatures) {
  // Don't-cares, offset covers (output phase 0), constants, multi-row
  // covers, comments and line continuations.
  const std::string text =
      "# full adder, written the awkward way\n"
      ".model fa\n"
      ".inputs a b \\\n"
      "cin\n"
      ".outputs sum carry_n one\n"
      ".names a b cin sum\n"
      "100 1\n"
      "010 1\n"
      "001 1\n"
      "111 1\n"
      ".names a b cin carry_n\n"  // offset cover: NOT(majority)
      "11- 0\n"
      "1-1 0\n"
      "-11 0\n"
      ".names one\n"
      "1\n"
      ".end\n";
  const Aig parsed = io::read_blif_string(text);
  ASSERT_EQ(parsed.num_pis(), 3u);
  ASSERT_EQ(parsed.num_pos(), 3u);

  Aig want;
  const Lit a = want.create_pi("a");
  const Lit b = want.create_pi("b");
  const Lit cin = want.create_pi("cin");
  want.create_po(want.create_xor3(a, b, cin), "sum");
  want.create_po(lit_not(want.create_maj3(a, b, cin)), "carry_n");
  want.create_po(Aig::kConst1, "one");

  const sat::CecResult cec = sat::check_equivalence(parsed, want);
  EXPECT_EQ(cec.verdict, sat::CecResult::Verdict::kEquivalent);
}

TEST(Blif, WriterAvoidsPortNameCollisions) {
  // A PI named like an internal signal ("n2") must not alias an AND node's
  // output in the export; the round trip has to stay equivalent.
  Aig aig;
  const Lit n2 = aig.create_pi("n2");
  const Lit b = aig.create_pi("b");
  aig.create_po(aig.create_and(n2, b), "z");

  std::ostringstream os;
  io::write_blif(os, aig, "collide");
  const Aig back = io::read_blif_string(os.str());
  EXPECT_EQ(back.num_ands(), 1u);

  const sat::CecResult cec = sat::check_equivalence(aig, back);
  EXPECT_EQ(cec.verdict, sat::CecResult::Verdict::kEquivalent);
}

TEST(Blif, ReaderHandlesCrlfAndDeepChains) {
  // CRLF line endings with a continuation, plus a buffer chain deep enough
  // to break a recursive elaborator.
  std::ostringstream text;
  text << ".model crlf\r\n.inputs a \\\r\nb\r\n.outputs z\r\n";
  constexpr int kDepth = 200000;
  text << ".names a b s0\n11 1\n";
  for (int i = 1; i < kDepth; ++i) {
    text << ".names s" << (i - 1) << " s" << i << "\n1 1\n";
  }
  text << ".names s" << (kDepth - 1) << " z\n1 1\n.end\n";

  const Aig parsed = io::read_blif_string(text.str());
  EXPECT_EQ(parsed.num_pis(), 2u);

  Aig want;
  want.create_po(want.create_and(want.create_pi("a"), want.create_pi("b")),
                 "z");
  const sat::CecResult cec = sat::check_equivalence(parsed, want);
  EXPECT_EQ(cec.verdict, sat::CecResult::Verdict::kEquivalent);
}

TEST(Blif, ReaderHandlesMissingFinalNewline) {
  // The last line of a file often lacks '\n' (truncated editors, pipes).
  // Both a final `.end` and a final cover row must parse.
  const Aig with_end = io::read_blif_string(
      ".model m\n.inputs a b\n.outputs z\n.names a b z\n11 1\n.end");
  EXPECT_EQ(with_end.num_pis(), 2u);
  EXPECT_EQ(with_end.num_ands(), 1u);

  const Aig no_end = io::read_blif_string(
      ".model m\n.inputs a b\n.outputs z\n.names a b z\n11 1");
  const sat::CecResult cec = sat::check_equivalence(with_end, no_end);
  EXPECT_EQ(cec.verdict, sat::CecResult::Verdict::kEquivalent);
}

TEST(Blif, ContinuationKeepsTokenBoundaries) {
  // A '\' directly after the last token used to glue it to the next
  // line's first token ("b" + "cin" -> "bcin"), silently dropping an
  // input.  The continuation must behave as whitespace.
  const std::string text =
      ".model fa\n"
      ".inputs a b\\\n"
      "cin\n"
      ".outputs sum\n"
      ".names a b\\\n"
      "cin sum\n"
      "100 1\n010 1\n001 1\n111 1\n"
      ".end\n";
  const Aig parsed = io::read_blif_string(text);
  ASSERT_EQ(parsed.num_pis(), 3u);

  Aig want;
  const Lit a = want.create_pi("a");
  const Lit b = want.create_pi("b");
  const Lit cin = want.create_pi("cin");
  want.create_po(want.create_xor3(a, b, cin), "sum");
  const sat::CecResult cec = sat::check_equivalence(parsed, want);
  EXPECT_EQ(cec.verdict, sat::CecResult::Verdict::kEquivalent);
}

TEST(Blif, ContinuationInsideCoverRows) {
  // Continuations *inside* a .names cover list, including one whose
  // backslash carries trailing blanks (and a CRLF) — previously the '\'
  // survived as a bogus cover token and the row was rejected or dropped.
  const std::string text =
      ".model m\n"
      ".inputs a b c\n"
      ".outputs z\n"
      ".names a b c z\n"
      "11- \\  \n"
      "1\n"
      "-11 \\\r\n"
      "1\n"
      ".end\n";
  const Aig parsed = io::read_blif_string(text);

  Aig want;
  const Lit a = want.create_pi("a");
  const Lit b = want.create_pi("b");
  const Lit c = want.create_pi("c");
  want.create_po(want.create_or(want.create_and(a, b), want.create_and(b, c)),
                 "z");
  const sat::CecResult cec = sat::check_equivalence(parsed, want);
  EXPECT_EQ(cec.verdict, sat::CecResult::Verdict::kEquivalent);
}

TEST(Blif, ReaderRejectsMalformedInput) {
  EXPECT_THROW(io::read_blif_string(".model m\n.inputs a\n.outputs z\n.end\n"),
               ContractError);  // z undriven
  EXPECT_THROW(io::read_blif_string(
                   ".model m\n.inputs a\n.outputs z\n"
                   ".names a z\n1 1\n.names a z\n0 1\n.end\n"),
               ContractError);  // z driven twice
  EXPECT_THROW(io::read_blif_string(
                   ".model m\n.inputs a\n.outputs z\n"
                   ".names a z\n2 1\n.end\n"),
               ContractError);  // bad cover literal
  EXPECT_THROW(io::read_blif_string(
                   ".model m\n.inputs a\n.outputs y z\n"
                   ".names z y\n1 1\n.names y z\n1 1\n.end\n"),
               ContractError);  // combinational cycle
  EXPECT_THROW(io::read_blif_string(
                   ".model m\n.inputs a\n.outputs z\n"
                   ".names a\n1\n.names a z\n1 1\n.end\n"),
               ContractError);  // gate drives a declared input
  EXPECT_THROW(io::read_blif_string(""), ContractError);  // empty input
  EXPECT_THROW(io::read_blif_string("# only a comment\n"), ContractError);
}

TEST(Json, BuildAndDump) {
  io::Json obj = io::Json::object();
  obj.set("name", "adder16");
  obj.set("jj_total", 1058);
  obj.set("winner", true);
  io::Json arr = io::Json::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(io::Json());
  obj.set("misc", std::move(arr));

  const std::string compact = obj.dump(-1);
  EXPECT_EQ(compact,
            "{\"name\":\"adder16\",\"jj_total\":1058,\"winner\":true,"
            "\"misc\":[1,\"two\",null]}");
}

TEST(Json, ParseRoundTrip) {
  const std::string text =
      "{\"a\": [1, 2.5, -3e2], \"b\": {\"nested\": \"va\\\"l\\n\"},"
      " \"c\": false, \"d\": null}";
  const io::Json j = io::Json::parse(text);
  EXPECT_DOUBLE_EQ(j.at("a").at(1).as_number(), 2.5);
  EXPECT_DOUBLE_EQ(j.at("a").at(2).as_number(), -300.0);
  EXPECT_EQ(j.at("b").at("nested").as_string(), "va\"l\n");
  EXPECT_FALSE(j.at("c").as_bool());
  EXPECT_TRUE(j.at("d").is_null());
  EXPECT_FALSE(j.contains("missing"));

  // dump -> parse is the identity on the value.
  const io::Json again = io::Json::parse(j.dump(2));
  EXPECT_EQ(again.dump(-1), j.dump(-1));
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(io::Json::parse(""), ContractError);
  EXPECT_THROW(io::Json::parse("{\"a\": 1,}"), ContractError);
  EXPECT_THROW(io::Json::parse("[1, 2] trailing"), ContractError);
  EXPECT_THROW(io::Json::parse("{\"a\" 1}"), ContractError);
  EXPECT_THROW(io::Json::parse("\"unterminated"), ContractError);
}

TEST(Dot, StagesAnnotated) {
  const Aig aig = gen::ripple_adder(3);
  t1::FlowParams params;
  params.num_phases = 4;
  const t1::FlowResult r = t1::run_flow(aig, params);

  std::ostringstream os;
  io::write_dot(os, r.materialized.netlist, &r.materialized.stages);
  const std::string text = os.str();
  EXPECT_NE(text.find("digraph"), std::string::npos);
  EXPECT_NE(text.find("σ="), std::string::npos);
  EXPECT_NE(text.find("fillcolor=gold"), std::string::npos);  // T1 cores
  EXPECT_NE(text.find("->"), std::string::npos);
}

TEST(Blif, DanglingAndsRoundTripStably) {
  // The writer emits only the PO-reachable cone: ANDs no output observes
  // would otherwise be dropped by the demand-driven reader, making
  // write -> read round trips structurally unstable.  (Byte identity is
  // not the contract — the reader renumbers nets in elaboration order —
  // but the structural digest must survive, and a second trip must be a
  // fixpoint.)
  Aig aig;
  const Lit a = aig.create_pi("a");
  const Lit b = aig.create_pi("b");
  aig.create_and(a, lit_not(b));  // dangling: no PO reaches it
  aig.create_po(aig.create_and(a, b), "y");

  std::ostringstream first;
  io::write_blif(first, aig, "dangle");
  // The dangling gate is not in the emitted text: one AND cover only.
  EXPECT_EQ(first.str().find("11 1\n"), first.str().rfind("11 1\n"));
  const Aig back = io::read_blif_string(first.str());
  EXPECT_EQ(back.num_ands(), 1u);
  EXPECT_EQ(back.num_pis(), 2u);  // PIs survive even when unobserved
  EXPECT_EQ(serve::hash_aig(back), serve::hash_aig(aig));

  std::ostringstream second;
  io::write_blif(second, back, "dangle");
  const Aig again = io::read_blif_string(second.str());
  std::ostringstream third;
  io::write_blif(third, again, "dangle");
  EXPECT_EQ(second.str(), third.str());

  const sat::CecResult cec = sat::check_equivalence(aig.cleaned(), back);
  EXPECT_EQ(cec.verdict, sat::CecResult::Verdict::kEquivalent);
}

TEST(Blif, ZeroPoNetlistRoundTrips) {
  Aig aig;
  aig.create_pi("a");
  aig.create_pi("b");

  std::ostringstream first;
  io::write_blif(first, aig, "inputs_only");
  const Aig back = io::read_blif_string(first.str());
  EXPECT_EQ(back.num_pis(), 2u);
  EXPECT_EQ(back.num_pos(), 0u);
  EXPECT_EQ(back.num_ands(), 0u);
  std::ostringstream second;
  io::write_blif(second, back, "inputs_only");
  EXPECT_EQ(first.str(), second.str());
}

TEST(Blif, ConstantOutputsRoundTrip) {
  Aig aig;
  aig.create_po(Aig::kConst1, "hi");
  aig.create_po(Aig::kConst0, "lo");

  std::ostringstream first;
  io::write_blif(first, aig, "consts");
  const Aig back = io::read_blif_string(first.str());
  ASSERT_EQ(back.num_pos(), 2u);
  EXPECT_EQ(back.po(0), Aig::kConst1);
  EXPECT_EQ(back.po(1), Aig::kConst0);
  std::ostringstream second;
  io::write_blif(second, back, "consts");
  EXPECT_EQ(first.str(), second.str());
}

TEST(Dot, PlainNetlistWithoutStages) {
  const sfq::Netlist ntk = sfq::map_to_sfq(gen::ripple_adder(2));
  std::ostringstream os;
  io::write_dot(os, ntk);
  EXPECT_NE(os.str().find("digraph"), std::string::npos);
  EXPECT_EQ(os.str().find("σ="), std::string::npos);
}

}  // namespace
}  // namespace t1map
