/// \file t1_rewrite.hpp
/// \brief Applies accepted T1 candidates to a netlist (paper §II-A, second
/// half: "the MFFCs of nodes u1..un are replaced by the T1-FF-based
/// circuit").
///
/// For every accepted candidate the rewriter instantiates one T1 core fed by
/// the (possibly inverted) leaves, adds one tap per distinct matched output,
/// reroutes every consumer of a matched root to the corresponding tap, and
/// drops the group MFFC.  Input inverters are shared across candidates.
/// The result is functionally equivalent to the input by construction (each
/// tap's function equals the replaced root's cut function); tests verify
/// this by exhaustive/random simulation and SAT.

#pragma once

#include <vector>

#include "sfq/netlist.hpp"
#include "t1/t1_detect.hpp"

namespace t1map::t1 {

struct RewriteStats {
  int t1_cores = 0;
  int taps = 0;
  int input_inverters = 0;  // fresh NOT cells created for input polarities
  long removed_cells = 0;
  /// Exact change of combinational cell area (JJ, splitters excluded):
  /// old minus new.  At least the sum of accepted gains (inverter sharing
  /// can only improve it).
  long cell_area_delta = 0;
};

/// Returns the rewritten netlist.  `accepted` must be non-overlapping, as
/// produced by `detect_t1`.
sfq::Netlist apply_t1_rewrite(const sfq::Netlist& ntk,
                              const std::vector<T1Candidate>& accepted,
                              RewriteStats* stats = nullptr);

}  // namespace t1map::t1
