/// \file transport.hpp
/// \brief Transport abstraction for the serving loop.
///
/// The server core speaks JSONL over an abstract `Connection`; where the
/// lines come from is the transport's business:
///
///   * `StreamTransport` — the original single-client mode: one connection
///     wrapping a `std::istream`/`std::ostream` pair (stdin/stdout, a
///     FIFO).  `accept()` yields it once, then reports shutdown.
///   * `SocketListener` — a Unix-domain or loopback-TCP listener.  Each
///     accepted client becomes its own `Connection`; the server runs one
///     session thread per connection over the shared cache.
///
/// Reads come in two flavors to preserve the dispatcher's batching
/// semantics: `read_line(line, /*wait=*/false)` returns `kIdle` instead of
/// blocking when no complete line is buffered, which is exactly the
/// "input drained, flush the batch" signal the stream loop derived from
/// `in_avail()`.  A blocking read on a socket is bounded by the configured
/// idle timeout, after which the connection is closed — an abandoned
/// client must not pin a session thread forever.
///
/// Shutdown is async-signal-compatible: `Transport::shutdown()` only
/// writes one byte to a self-pipe (SIGTERM-safe), unblocking `accept()`
/// and every blocked connection read so the server can drain and exit.

#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

namespace t1map::serve {

/// Outcome of a `Connection::read_line` call.
enum class ReadResult {
  kLine,    ///< `line` holds one complete request line (no newline).
  kIdle,    ///< No complete line buffered right now (non-waiting read).
  kClosed,  ///< Peer closed, idle timeout expired, or shutdown requested.
};

/// One bidirectional JSONL client channel.  Not thread-safe: each
/// connection is owned by exactly one session thread.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Reads the next line.  With `wait` unset, returns `kIdle` when no
  /// complete line is immediately available; with it set, blocks until a
  /// line arrives, the peer closes, the idle timeout expires, or the
  /// transport shuts down.
  virtual ReadResult read_line(std::string& line, bool wait) = 0;

  /// Queues response bytes (the caller appends its own newline).
  virtual void write(const std::string& data) = 0;

  /// Pushes queued bytes to the peer.  Returns false once the peer is
  /// unreachable; the session stops writing but still drains its batch.
  virtual bool flush() = 0;

  /// Forcibly tears the connection down (both directions), unblocking any
  /// read in progress on the owning session thread.  The only Connection
  /// method that is safe to call from another thread; used by drain.
  virtual void abort() = 0;

  /// Human-readable peer label for logs ("stdin", "unix:...", "tcp:...").
  virtual std::string peer() const = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocks until a client arrives; returns nullptr once the transport is
  /// shut down (or, for the stream transport, after its only connection).
  virtual std::unique_ptr<Connection> accept() = 0;

  /// Requests shutdown: `accept()` returns nullptr and blocked connection
  /// reads see `kClosed`.  Async-signal-safe for `SocketListener` (one
  /// `write` to a pipe) and idempotent.
  virtual void shutdown() = 0;

  /// Human-readable endpoint description.
  virtual std::string describe() const = 0;
};

/// Parsed `--serve-listen` endpoint.
struct ListenAddress {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;         ///< kUnix: socket path.
  std::string host;         ///< kTcp: bind host (numeric or "localhost").
  std::uint16_t port = 0;   ///< kTcp: bind port; 0 = ephemeral.
};

/// Parses "unix:PATH", "tcp:HOST:PORT", or bare "HOST:PORT".  Throws
/// `ContractError` on malformed input.
ListenAddress parse_listen_address(const std::string& spec);

/// Single-connection transport over caller-owned streams.
class StreamTransport final : public Transport {
 public:
  StreamTransport(std::istream& in, std::ostream& out);

  std::unique_ptr<Connection> accept() override;
  void shutdown() override { done_ = true; }
  std::string describe() const override { return "stream"; }

 private:
  std::istream& in_;
  std::ostream& out_;
  std::atomic<bool> done_{false};  // shutdown() may come from a session
};

/// Unix-domain / loopback-TCP listening transport.
class SocketListener final : public Transport {
 public:
  /// Binds and listens.  For Unix sockets a stale path left by a previous
  /// crash is unlinked first.  For TCP, port 0 binds an ephemeral port;
  /// `bound_port()` reports the actual one.  Throws `ContractError` when
  /// the endpoint cannot be bound.
  /// `idle_timeout_ms` bounds how long a connection read may block with no
  /// client traffic (0 = no limit).
  explicit SocketListener(const ListenAddress& addr, int idle_timeout_ms = 0);
  ~SocketListener() override;

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  std::unique_ptr<Connection> accept() override;
  void shutdown() override;
  std::string describe() const override;

  std::uint16_t bound_port() const { return bound_port_; }

 private:
  void close_all();

  ListenAddress addr_;
  int idle_timeout_ms_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;   ///< poll'd alongside every blocking fd
  int wake_write_fd_ = -1;  ///< shutdown() writes here; signal-safe
  std::uint16_t bound_port_ = 0;
  bool unlink_on_close_ = false;
};

}  // namespace t1map::serve
